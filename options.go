package tdb

import (
	"context"

	"tdb/internal/core"
	"tdb/internal/digraph"
)

// Option configures a Solve call. Options compose left to right:
//
//	res, err := tdb.Solve(ctx, g, 5,
//	    tdb.WithAlgorithm(tdb.BURPlus),
//	    tdb.WithOrder(tdb.OrderDegreeAsc),
//	    tdb.WithWorkers(8),
//	)
//
// The zero configuration matches the historical defaults: TDB++, natural
// order, MinLen 3, no prefilter, automatic strategy selection over a
// GOMAXPROCS worker budget.
type Option func(*solveConfig)

// solveConfig is the resolved option set of one Solve call.
type solveConfig struct {
	core          core.Options // K filled in by Solve
	algo          Algorithm
	workers       int
	strategy      Strategy
	edgeCover     bool
	unconstrained bool
	prepassSet    bool
	renumber      Renumbering
	storage       Storage
}

// newSolveConfig applies opts over the defaults.
func newSolveConfig(opts []Option) solveConfig {
	cfg := solveConfig{algo: TDBPlusPlus}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// spec translates the configuration for the core planning layer.
func (c *solveConfig) spec() core.SolveSpec {
	return core.SolveSpec{
		Algorithm:     c.algo,
		Opts:          c.core,
		Workers:       c.workers,
		Strategy:      c.strategy,
		NoAutoPrepass: c.prepassSet && c.core.PrepassWorkers == 0,
	}
}

// WithMinLen sets the minimum covered cycle length: 3 (the default)
// excludes 2-cycles, 2 includes them (the paper's Table IV variant).
func WithMinLen(minLen int) Option {
	return func(c *solveConfig) { c.core.MinLen = minLen }
}

// WithOrder sets the candidate processing order (default OrderNatural).
func WithOrder(order Order) Option {
	return func(c *solveConfig) { c.core.Order = order }
}

// WithSeed sets the seed for OrderRandom.
func WithSeed(seed uint64) Option {
	return func(c *solveConfig) { c.core.Seed = seed }
}

// WithWeights makes the cover cost-aware: vertex v costs weights[v] (length
// must equal the vertex count) and the algorithms try to keep expensive
// vertices out of the cover. Combine with WithOrder(OrderWeighted) to
// process expensive vertices first, which gives them the best exclusion
// odds. LabeledGraph.Weights builds the vector from external IDs.
func WithWeights(weights []float64) Option {
	return func(c *solveConfig) { c.core.Weights = weights }
}

// WithSCCPrefilter exempts vertices outside non-trivial strongly connected
// components from cover candidacy up front (they lie on no cycle of any
// length).
func WithSCCPrefilter() Option {
	return func(c *solveConfig) { c.core.SCCPrefilter = true }
}

// WithPrepassWorkers pins the TDB++ BFS-filter prepass configuration:
// n > 1 workers pre-resolve candidates before the sequential loop (the
// intra-SCC parallelization for graphs that are one giant SCC), n < 0
// selects GOMAXPROCS, and n == 0 forbids the planner from selecting the
// prepass on its own. Requests that resolve to a single effective worker
// run the plain sequential loop, which is faster (DESIGN.md §6). Without
// this option the planner sizes the prepass from WithWorkers when it
// selects that strategy.
func WithPrepassWorkers(n int) Option {
	return func(c *solveConfig) {
		c.core.PrepassWorkers = n
		c.prepassSet = true
	}
}

// WithPartialOnDeadline degrades instead of failing when the context
// deadline expires mid-solve: the top-down family returns the cover built so
// far completed with every still-undecided candidate — a VALID
// (every constrained cycle covered) but possibly non-minimal cover — with
// Stats.Degraded set instead of Stats.TimedOut. Solves that finish in time
// are byte-for-byte unaffected. Only the top-down vertex family (TDB, TDB+,
// TDB++) supports the contract; bottom-up and DARC solves, whose partial
// state is not a cover, reject the option with an error, as does
// WithEdgeCover. This is the serving-layer degradation knob: tdbserve maps
// it to the partial_on_deadline request field (DESIGN.md §12).
func WithPartialOnDeadline() Option {
	return func(c *solveConfig) { c.core.PartialOnDeadline = true }
}

// WithWorkers sets the worker budget strategy selection plans against and
// parallel strategies execute with; n <= 0 (the default) selects
// GOMAXPROCS. One worker forces sequential execution.
func WithWorkers(n int) Option {
	return func(c *solveConfig) { c.workers = n }
}

// WithAlgorithm selects the cover algorithm (default TDBPlusPlus).
func WithAlgorithm(algo Algorithm) Option {
	return func(c *solveConfig) { c.algo = algo }
}

// WithStrategy pins the execution strategy instead of letting the planner
// choose from the SCC condensation; see Strategy.
func WithStrategy(s Strategy) Option {
	return func(c *solveConfig) { c.strategy = s }
}

// WithRenumbering runs the solve on a cache-aware renumbering of the
// graph: a locality permutation (RenumberDegree packs high-degree hubs
// into a compact ID prefix, RenumberBFS shrinks adjacency bandwidth with
// a Cuthill-McKee-style sweep) is computed up front, the CSR is rebuilt
// in permuted order, and the computation runs entirely on renumbered IDs.
// The result is translated back before it is returned, so callers never
// see vertex IDs change — Result.Cover, Stats and the labeled layer all
// speak the input numbering. Stats.Renumbering records the mode.
//
// The candidate processing order is computed on the ORIGINAL graph and
// replayed on the renumbered one, so for the top-down family (TDB, TDB+,
// TDB++) — whose cover is a function of the candidate sequence and
// yes/no detector answers alone — the returned cover is exactly the
// cover the unrenumbered solve returns: renumbering is purely a
// memory-layout optimization. BUR/BUR+ (whose hit-counter heuristic
// follows the concrete cycles the DFS finds, an adjacency-order artifact)
// and DARC-DV (which iterates edges in CSR order) may return a different
// — equally valid, equally minimal — cover. Not compatible with
// WithEdgeCover. Engine.Solve caches the renumbered graph per mode, so
// repeated engine solves pay the permutation cost once.
func WithRenumbering(mode Renumbering) Option {
	return func(c *solveConfig) { c.renumber = mode }
}

// WithStorage runs the solve over s instead of the Graph argument, which
// may then be nil — the entry point for non-default storage backends:
//
//	mg, err := tdb.OpenMapped("web-Google.tdbcsr")
//	res, err := tdb.Solve(ctx, nil, 5, tdb.WithStorage(mg))
//
// Every algorithm, strategy and option works unchanged over any backend
// except WithRenumbering, which rebuilds the CSR in permuted order and
// therefore requires the in-memory *Graph backend (passing a *Graph to
// WithStorage is fine). For repeated solves over one backend use
// NewStorageEngine, which additionally pools working state.
func WithStorage(s Storage) Option {
	return func(c *solveConfig) { c.storage = s }
}

// WithEdgeCover switches Solve to the EDGE-transversal problem (the paper's
// Definition 5, the problem the DARC baseline natively solves): the result
// names a minimal edge set whose removal destroys every constrained cycle,
// returned in Result.Edges (Cover stays empty). Edge solves always run the
// top-down "TDB-E" process sequentially.
func WithEdgeCover() Option {
	return func(c *solveConfig) { c.edgeCover = true }
}

// WithUnconstrained lifts the hop constraint: Solve covers cycles of EVERY
// length (the feedback-vertex-style variant of paper Sec. VI-C), ignoring
// its k argument (pass 0 by convention).
func WithUnconstrained() Option {
	return func(c *solveConfig) { c.unconstrained = true }
}

// withContext carries a legacy Options.Context through ToOptions.
func withContext(ctx context.Context) Option {
	return func(c *solveConfig) { c.core.Context = ctx }
}

// withCancelled carries the deprecated Options.Cancelled hook through
// ToOptions.
func withCancelled(fn func() bool) Option {
	return func(c *solveConfig) { c.core.Cancelled = fn }
}

// Strategy identifies how a solve executes; the planner picks one
// automatically from the graph's SCC condensation and the worker budget
// unless WithStrategy pins it. The chosen plan is recorded in
// Stats.Strategy / Stats.Workers / Stats.StrategyPinned.
type Strategy = core.Strategy

// Execution strategies.
const (
	// StrategyAuto (the default) selects: StrategyParallelSCC when the
	// condensation splits into several non-trivial SCCs, StrategyPrepass
	// when one giant SCC meets TDB++ and more than one worker, and
	// StrategySequential otherwise.
	StrategyAuto = core.StrategyAuto
	// StrategySequential is the paper's single-threaded cover loop.
	StrategySequential = core.StrategySequential
	// StrategyParallelSCC covers each non-trivial strongly connected
	// component concurrently.
	StrategyParallelSCC = core.StrategyParallelSCC
	// StrategyPrepass runs the parallel BFS-filter prepass in front of the
	// sequential TDB++ loop.
	StrategyPrepass = core.StrategyPrepass
)

// Renumbering selects a cache-aware vertex renumbering mode for
// WithRenumbering; see the digraph-layer docs for the layouts.
type Renumbering = digraph.Renumbering

// Renumbering modes.
const (
	// RenumberNone keeps the input numbering (the default).
	RenumberNone = digraph.RenumberNone
	// RenumberDegree renames vertices by descending total degree, packing
	// the high-degree core into a compact cache-resident ID prefix.
	RenumberDegree = digraph.RenumberDegree
	// RenumberBFS renames vertices in a Cuthill-McKee-style breadth-first
	// sweep, giving edge endpoints nearby IDs.
	RenumberBFS = digraph.RenumberBFS
)

// ParseRenumbering resolves a renumbering name ("none", "degree", "bfs").
func ParseRenumbering(s string) (Renumbering, error) { return digraph.ParseRenumbering(s) }

// ParseAlgorithm resolves the paper's algorithm names ("TDB++", "BUR+",
// "DARC-DV", ...).
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// ParseOrder resolves a candidate-order name ("natural", "degree-asc",
// "degree-desc", "random", "weighted").
func ParseOrder(s string) (Order, error) { return core.ParseOrder(s) }

// ParseStrategy resolves a strategy name ("auto", "sequential",
// "scc-parallel", "prepass").
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// ToOptions converts the deprecated Options struct to the equivalent
// functional options — the migration bridge for code still assembling an
// Options value:
//
//	tdb.Solve(ctx, g, k, opts.ToOptions()...)
//
// A nil receiver yields no options (the defaults). The conversion is exact:
// every field, including the deprecated Cancelled hook, reaches the solve
// unchanged.
//
// Concurrency note: the legacy entry points only polled Cancelled from
// worker goroutines when the caller opted into parallelism (PrepassWorkers,
// CoverParallel). Solve plans parallel strategies on its own, so a
// converted Cancelled hook must be safe for concurrent use — or pin
// WithStrategy(StrategySequential).
func (o *Options) ToOptions() []Option {
	if o == nil {
		return nil
	}
	out := []Option{
		WithMinLen(o.MinLen),
		WithOrder(o.Order),
		WithSeed(o.Seed),
	}
	if o.Weights != nil {
		out = append(out, WithWeights(o.Weights))
	}
	if o.SCCPrefilter {
		out = append(out, WithSCCPrefilter())
	}
	if o.PrepassWorkers != 0 {
		out = append(out, WithPrepassWorkers(o.PrepassWorkers))
	}
	if o.Context != nil {
		out = append(out, withContext(o.Context))
	}
	if o.Cancelled != nil {
		out = append(out, withCancelled(o.Cancelled))
	}
	return out
}
