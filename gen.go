package tdb

import (
	"tdb/internal/gen"
)

// Synthetic workload generators, re-exported for examples and downstream
// experimentation. All generators are deterministic in their seed.

// GenErdosRenyi generates a directed G(n, m): m distinct uniform edges.
func GenErdosRenyi(n, m int, seed uint64) *Graph {
	return gen.ErdosRenyi(n, m, seed)
}

// GenPowerLaw generates a directed graph with ~m edges, right-skewed
// degrees (skew >= 1; larger is more skewed) and the given probability that
// an edge's reverse is also present.
func GenPowerLaw(n, m int, skew, reciprocity float64, seed uint64) *Graph {
	return gen.PowerLaw(n, m, skew, reciprocity, seed)
}

// GenSmallWorld generates a directed ring lattice (fwd forward edges per
// vertex) with random backward chords that close short cycles.
func GenSmallWorld(n, fwd int, chordProb float64, seed uint64) *Graph {
	return gen.SmallWorld(n, fwd, chordProb, seed)
}

// Planted is a graph with known implanted cycles.
type Planted = gen.Planted

// GenPlantedCycles implants numCycles vertex-disjoint cycles with lengths
// in [minLen, maxLen] into a random background of bgEdges edges.
func GenPlantedCycles(n, numCycles, minLen, maxLen, bgEdges int, seed uint64) *Planted {
	return gen.PlantedCycles(n, numCycles, minLen, maxLen, bgEdges, seed)
}

// Dataset is a named synthetic stand-in for one of the paper's Table II
// graphs; Generate(scale) builds it at a fraction of the published size.
type Dataset = gen.Dataset

// Datasets returns stand-ins for the paper's 16 evaluation graphs.
func Datasets() []Dataset { return gen.Datasets() }

// DatasetByName finds a dataset stand-in ("WKV", "WGO", ...) by name.
func DatasetByName(name string) (Dataset, bool) { return gen.DatasetByName(name) }
