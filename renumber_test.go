package tdb

import (
	"slices"
	"testing"
)

// renumberTestGraphs returns the workload the renumbering-equivalence
// property runs over: shapes with one giant SCC, many small SCCs, and a
// skewed degree distribution, so every execution strategy is exercised on
// a graph it would plan for.
func renumberTestGraphs() map[string]*Graph {
	return map[string]*Graph{
		"erdos":      GenErdosRenyi(300, 1800, 21),
		"powerlaw":   GenPowerLaw(400, 2400, 2.2, 0.3, 22),
		"smallworld": GenSmallWorld(250, 2, 0.15, 23),
	}
}

// TestSolveRenumberingCoverIdentity is the property the WithRenumbering
// contract promises: for the order-driven algorithms, the cover returned
// under any renumbering mode, already translated back to input IDs by
// Solve, is exactly the cover of the unrenumbered solve — across hop
// bounds and execution strategies.
func TestSolveRenumberingCoverIdentity(t *testing.T) {
	strategies := []Strategy{StrategyAuto, StrategySequential, StrategyParallelSCC, StrategyPrepass}
	// The identity guarantee holds for the top-down family: its cover is a
	// function of the candidate sequence and representation-independent
	// yes/no detector answers. BUR's hit-counter heuristic follows the
	// concrete cycles the DFS finds — an adjacency-order artifact — so the
	// BUR family only promises a valid cover (tested separately).
	algos := []Algorithm{TDBPlusPlus, TDBPlus, TDB}
	for name, g := range renumberTestGraphs() {
		for _, k := range []int{3, 5, 8} {
			for _, algo := range algos {
				for _, strat := range strategies {
					if strat == StrategyPrepass && algo != TDBPlusPlus {
						continue // the prepass plan is TDB++-only
					}
					base, err := Solve(nil, g, k,
						WithAlgorithm(algo), WithStrategy(strat), WithWorkers(2))
					if err != nil {
						t.Fatalf("%s k=%d %v/%v baseline: %v", name, k, algo, strat, err)
					}
					want := append([]VID(nil), base.Cover...)
					slices.Sort(want)
					for _, mode := range []Renumbering{RenumberDegree, RenumberBFS} {
						res, err := Solve(nil, g, k,
							WithAlgorithm(algo), WithStrategy(strat), WithWorkers(2),
							WithRenumbering(mode))
						if err != nil {
							t.Fatalf("%s k=%d %v/%v %v: %v", name, k, algo, strat, mode, err)
						}
						got := append([]VID(nil), res.Cover...)
						slices.Sort(got)
						if !slices.Equal(got, want) {
							t.Fatalf("%s k=%d %v/%v %v: cover mismatch\n got %v\nwant %v",
								name, k, algo, strat, mode, got, want)
						}
						if res.Stats.Renumbering != mode.String() {
							t.Fatalf("Stats.Renumbering = %q, want %q", res.Stats.Renumbering, mode)
						}
						if rep := Verify(g, k, 3, res.Cover, false); !rep.Valid {
							t.Fatalf("%s k=%d %v/%v %v: invalid cover, witness %v", name, k, algo, strat, mode, rep.Witness)
						}
					}
				}
			}
		}
	}
}

// TestSolveRenumberingCoverShape checks the renumbered result keeps the
// public cover shape — ascending input-numbering VIDs, byte-for-byte what
// the unrenumbered solve returns — across candidate orders.
func TestSolveRenumberingCoverShape(t *testing.T) {
	g := GenPowerLaw(300, 1800, 2.2, 0.3, 31)
	for _, order := range []Order{OrderNatural, OrderDegreeDesc, OrderRandom} {
		base, err := Solve(nil, g, 6, WithStrategy(StrategySequential), WithOrder(order), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Renumbering{RenumberDegree, RenumberBFS} {
			res, err := Solve(nil, g, 6, WithStrategy(StrategySequential), WithOrder(order),
				WithSeed(9), WithRenumbering(mode))
			if err != nil {
				t.Fatal(err)
			}
			if !slices.IsSorted(res.Cover) {
				t.Fatalf("order %v mode %v: cover not ascending: %v", order, mode, res.Cover)
			}
			if !slices.Equal(res.Cover, base.Cover) {
				t.Fatalf("order %v mode %v: cover mismatch\n got %v\nwant %v",
					order, mode, res.Cover, base.Cover)
			}
		}
	}
}

// TestEngineSolveRenumbering exercises the per-mode cached twin: repeated
// engine solves under renumbering must agree with the package-level path
// and with the engine's own unrenumbered answer.
func TestEngineSolveRenumbering(t *testing.T) {
	g := GenPowerLaw(300, 1800, 2.2, 0.3, 41)
	e := NewEngine(g)
	base, err := e.Solve(nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]VID(nil), base.Cover...)
	slices.Sort(want)
	for round := 0; round < 3; round++ {
		for _, mode := range []Renumbering{RenumberDegree, RenumberBFS} {
			res, err := e.Solve(nil, 6, WithRenumbering(mode))
			if err != nil {
				t.Fatal(err)
			}
			got := append([]VID(nil), res.Cover...)
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("round %d mode %v: got %v want %v", round, mode, got, want)
			}
		}
	}
}

// TestSolveRenumberingWeighted checks that the cost vector follows the
// permutation: the weighted objective must pick the same (input-ID)
// vertices either way.
func TestSolveRenumberingWeighted(t *testing.T) {
	g := GenErdosRenyi(200, 1400, 51)
	w := make([]float64, g.NumVertices())
	for v := range w {
		w[v] = float64((v*2654435761)%97) + 1
	}
	base, err := Solve(nil, g, 5, WithWeights(w), WithOrder(OrderWeighted))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]VID(nil), base.Cover...)
	slices.Sort(want)
	for _, mode := range []Renumbering{RenumberDegree, RenumberBFS} {
		res, err := Solve(nil, g, 5, WithWeights(w), WithOrder(OrderWeighted), WithRenumbering(mode))
		if err != nil {
			t.Fatal(err)
		}
		got := append([]VID(nil), res.Cover...)
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("mode %v: got %v want %v", mode, got, want)
		}
	}
}

// TestSolveRenumberingAdjacencyDrivenValid documents the weaker contract
// of the adjacency-order-driven algorithms (BUR's hit heuristic follows
// the concrete cycles found, DARC-DV iterates edges in CSR order): the
// cover may differ from the unrenumbered one but must still be a valid —
// and for BUR+ minimal — cover in input IDs.
func TestSolveRenumberingAdjacencyDrivenValid(t *testing.T) {
	g := GenErdosRenyi(150, 900, 61)
	for _, algo := range []Algorithm{BUR, BURPlus, DARCDV} {
		for _, mode := range []Renumbering{RenumberDegree, RenumberBFS} {
			res, err := Solve(nil, g, 5, WithAlgorithm(algo), WithRenumbering(mode))
			if err != nil {
				t.Fatal(err)
			}
			wantMinimal := algo == BURPlus
			if rep := Verify(g, 5, 3, res.Cover, wantMinimal); !rep.Valid || (wantMinimal && !rep.Minimal) {
				t.Fatalf("%v mode %v: bad cover (valid=%v minimal=%v) witness %v redundant %v",
					algo, mode, rep.Valid, rep.Minimal, rep.Witness, rep.Redundant)
			}
		}
	}
}

// TestSolveRenumberingRejectsEdgeCover pins the rejected combination.
func TestSolveRenumberingRejectsEdgeCover(t *testing.T) {
	g := GenErdosRenyi(50, 300, 71)
	if _, err := Solve(nil, g, 5, WithEdgeCover(), WithRenumbering(RenumberDegree)); err == nil {
		t.Fatal("WithEdgeCover + WithRenumbering was accepted")
	}
}
